package vcc

import (
	"repro/internal/coset"
	"repro/internal/faultrepo"
	"repro/internal/linecache"
	"repro/internal/memctrl"
	"repro/internal/shard"
)

// FaultRepoStats counts runtime fault-repository traffic: lookups, hits
// and misses of the descriptor cache, and stuck cells discovered by
// verify-after-write (see ShardedMemoryConfig.UseFaultRepo).
type FaultRepoStats = faultrepo.Stats

// WriteRequest is one line write in a ShardedMemory batch.
type WriteRequest = shard.WriteReq

// ReadRequest is one line read in a ShardedMemory batch.
type ReadRequest = shard.ReadReq

// Op is one element of a mixed read/write stream for Apply.
type Op = shard.Op

// Outcome is the per-op result of Apply.
type Outcome = shard.Outcome

// Op kinds for Op.Kind.
const (
	// OpWrite stores a 64-byte line.
	OpWrite = shard.OpWrite
	// OpRead retrieves a 64-byte line.
	OpRead = shard.OpRead
)

// LiveCounters is a lock-free snapshot of engine-wide read and write
// totals, pollable while batches are in flight.
type LiveCounters = shard.Counters

// Ticket tracks one asynchronous Submit until completion; Wait blocks
// for the outcomes and recycles the ticket (see Session).
type Ticket = shard.Ticket

// Session is an asynchronous submission handle over a ShardedMemory's
// per-shard issue queues (see ShardedMemory.Session).
type Session = shard.Session

// ErrClosed is returned by Submit — and by Apply, Write, Read,
// WriteBatch and ReadBatch, which are wrappers over it — once the
// memory has been Closed.
var ErrClosed = shard.ErrClosed

// CachePolicy selects how the optional decoded-line cache handles
// writes (see ShardedMemoryConfig.CacheLines).
type CachePolicy = linecache.Policy

// ChaosSpec carries the fault-injection rates of the deterministic
// chaos decorator (see ShardedMemoryConfig.Chaos and internal/chaos
// for the fault taxonomy).
type ChaosSpec = shard.ChaosSpec

// IsDeviceError reports whether err is a typed transient device error
// surfaced by the engine (retryable: the op may succeed if reissued).
func IsDeviceError(err error) bool { return memctrl.IsTransient(err) }

// Cache write policies.
const (
	// WriteThrough sends every write to the device immediately; cache
	// hits only skip decode+decrypt on reads. Device state is
	// bit-identical to running uncached.
	WriteThrough = linecache.WriteThrough
	// WriteBack defers the device write (encode+encrypt+RMW) until
	// eviction or Flush, coalescing repeated writes to hot lines into
	// one device writeback.
	WriteBack = linecache.WriteBack
)

// ShardedMemoryConfig assembles a sharded, concurrency-safe memory.
type ShardedMemoryConfig struct {
	// Lines is the total capacity in 64-byte cache lines.
	Lines int
	// Shards partitions the line address space (round-robin interleave)
	// across this many independent pipelines, each with its own device,
	// controller, encryption unit and derived PRNG streams. 0 defaults
	// to 1, which is bit-identical to Memory.
	Shards int
	// Workers bounds how many shard drainers may run concurrently; 0
	// defaults to min(Shards, GOMAXPROCS). Results never depend on it.
	Workers int
	// QueueDepth bounds each shard's issue queue: at most this many
	// in-flight tickets may be queued per shard before Submit (and the
	// synchronous wrappers) block — the async path's backpressure bound.
	// 0 defaults to shard.DefaultQueueDepth.
	QueueDepth int
	// NewEncoder builds one encoder per shard; defaults to
	// NewVCCEncoder(256). A factory rather than an instance because
	// codecs may carry scratch state and must not be shared across
	// concurrently-running shards.
	NewEncoder func() Encoder
	// Objective drives candidate selection; the zero value is OptFlips
	// (classic write reduction), as in MemoryConfig.
	Objective Objective
	// SLC selects single-level cells (default is the paper's 2-bit MLC).
	SLC bool
	// DisableEncryption bypasses the AES-CTR unit (ablations only).
	DisableEncryption bool
	// Key is the AES-256 key for the encryption units.
	Key [32]byte
	// FaultRate pre-generates per-shard stuck-at fault maps. 0 disables.
	FaultRate float64
	// EnduranceWrites enables wear tracking (see MemoryConfig).
	EnduranceWrites float64
	// EnduranceCoV is the lifetime coefficient of variation (default 0.2).
	EnduranceCoV float64
	// Seed is the master seed; shards derive decorrelated child seeds
	// from it (the single-shard configuration uses it directly).
	Seed uint64
	// CacheLines, when positive, fronts every shard's controller with a
	// per-shard LRU cache of that many decoded 64-byte plaintext lines
	// (internal/linecache): read hits skip the decode+decrypt pipeline
	// entirely. 0 disables caching, leaving the engine bit-identical to
	// previous behavior.
	CacheLines int
	// CachePolicy selects WriteThrough (default) or WriteBack for the
	// per-shard caches; meaningful only with CacheLines > 0. WriteBack
	// defers device writebacks until eviction, Flush or Close.
	CachePolicy CachePolicy
	// RemapSpares, when positive, reserves that many spare physical
	// lines per shard and layers a fault-repair remapping decorator over
	// each shard's controller: a write that still stores stuck-at-wrong
	// cells after coset encoding relocates its logical line to a spare
	// row and is rewritten there. Logical capacity stays Lines; spares
	// are extra physical rows. 0 disables repair.
	RemapSpares int
	// UseFaultRepo replaces the encoders' oracle view of stuck cells
	// with a runtime fault repository per shard: only cells previously
	// caught by verify-after-write are masked, and every write's verify
	// outcome feeds the repository. It also informs spare selection when
	// RemapSpares > 0.
	UseFaultRepo bool
	// FaultRepoCache sizes each shard's repository descriptor cache in
	// words when UseFaultRepo is set; 0 defaults to 256.
	FaultRepoCache int
	// Chaos, when non-nil, installs a deterministic fault-injecting
	// decorator at the top of every shard's pipeline: transient
	// read/write errors, torn writes, corrupted reads and latency
	// stalls at the configured rates, seeded per shard from the master
	// seed. Faulted ops are retried in place up to OpRetries times and
	// then surface typed errors (see Outcome.Err, IsDeviceError). A
	// spec with all rates zero installs an inert decorator that changes
	// nothing — bit-identical results, no allocations.
	Chaos *ChaosSpec
	// OpRetries bounds the engine's in-place retries of a
	// transiently-faulted op before its error surfaces. 0 defaults to
	// shard.DefaultOpRetries (2); negative disables retries.
	OpRetries int
}

// ShardedMemory is the concurrent variant of Memory: the line address
// space is interleaved across independent shards and every request
// flows through bounded per-shard issue queues — asynchronously via
// Session.Submit, or synchronously via the Apply/Write/Read wrappers
// over the same path. All methods are safe for concurrent use.
//
// With Shards == 1 every result — cells, energy, SAW counts, Stats —
// is bit-identical to a Memory built from the same configuration and
// seed, so sequential experiments stay valid on this engine; and at
// any shard count, results are bit-identical at any worker count or
// async in-flight depth.
type ShardedMemory struct {
	eng *shard.Engine
}

// NewShardedMemory builds a ShardedMemory from cfg.
func NewShardedMemory(cfg ShardedMemoryConfig) (*ShardedMemory, error) {
	newEnc := cfg.NewEncoder
	if newEnc == nil {
		newEnc = func() Encoder { return NewVCCEncoder(256) }
	}
	eng, err := shard.New(shard.Config{
		Lines:             cfg.Lines,
		Shards:            cfg.Shards,
		Workers:           cfg.Workers,
		QueueDepth:        cfg.QueueDepth,
		NewCodec:          func() coset.Codec { return newEnc() },
		Objective:         cfg.Objective,
		SLC:               cfg.SLC,
		DisableEncryption: cfg.DisableEncryption,
		Key:               cfg.Key,
		FaultRate:         cfg.FaultRate,
		EnduranceWrites:   cfg.EnduranceWrites,
		EnduranceCoV:      cfg.EnduranceCoV,
		Seed:              cfg.Seed,
		CacheLines:        cfg.CacheLines,
		CachePolicy:       cfg.CachePolicy,
		RemapSpares:       cfg.RemapSpares,
		UseFaultRepo:      cfg.UseFaultRepo,
		FaultRepoCache:    cfg.FaultRepoCache,
		Chaos:             cfg.Chaos,
		OpRetries:         cfg.OpRetries,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedMemory{eng: eng}, nil
}

// Lines returns the total capacity in cache lines.
func (m *ShardedMemory) Lines() int { return m.eng.Lines() }

// Shards returns the shard count.
func (m *ShardedMemory) Shards() int { return m.eng.Shards() }

// Workers returns the effective worker-pool bound.
func (m *ShardedMemory) Workers() int { return m.eng.Workers() }

// Write stores a 64-byte cache line, like Memory.Write but safe for
// concurrent use.
func (m *ShardedMemory) Write(line int, data []byte) (sawCells int, err error) {
	return m.eng.Write(line, data)
}

// Read retrieves a cache line, like Memory.Read but safe for concurrent
// use.
func (m *ShardedMemory) Read(line int, dst []byte) ([]byte, error) {
	return m.eng.Read(line, dst)
}

// Apply executes a mixed stream of reads and writes over the per-shard
// issue queues and returns one Outcome per op, indexed like ops. It is
// Submit+Wait — the synchronous view of the async path (see Session).
// Ops addressed to the same shard apply in slice order — reads and
// writes interleave exactly as submitted — so results are deterministic
// at any shard, worker or in-flight-ticket count. Passing the previous
// call's outcome slice back as out makes steady-state dispatch
// allocation-free; read outcomes alias the op's Data buffer when one is
// provided. After Close it returns ErrClosed.
func (m *ShardedMemory) Apply(ops []Op, out []Outcome) ([]Outcome, error) {
	return m.eng.Apply(ops, out)
}

// Session returns an asynchronous submission handle over the memory's
// issue queues. Session.Submit enqueues a mixed op batch and returns a
// Ticket immediately, so one producer can keep several batches in
// flight and overlap op-stream generation with encoding across shards;
// Ticket.Wait blocks for the outcomes. Session.SubmitFunc is the
// completion-callback form, and Session.Drain blocks until everything
// submitted through the session has completed.
//
// Ordering and determinism match Apply exactly: per-shard submission
// order, bit-identical outcomes and statistics at any in-flight depth.
// Backpressure is ShardedMemoryConfig.QueueDepth tickets per shard.
// Multiple sessions may share one memory.
func (m *ShardedMemory) Session() *Session { return m.eng.NewSession() }

// WriteBatch dispatches the requests over the issue queues and returns
// per-request stuck-at-wrong cell counts, indexed like reqs. It is a
// thin wrapper over Apply; requests to the same shard apply in slice
// order, so results are deterministic at any worker count.
func (m *ShardedMemory) WriteBatch(reqs []WriteRequest) ([]int, error) {
	return m.eng.WriteBatch(reqs)
}

// ReadBatch dispatches the reads over the issue queues and returns the
// plaintexts, indexed like reqs. out[i] aliases reqs[i].Dst when a
// destination buffer was provided (no per-request allocation) and is
// freshly allocated otherwise. It is a thin wrapper over Apply.
func (m *ShardedMemory) ReadBatch(reqs []ReadRequest) ([][]byte, error) {
	return m.eng.ReadBatch(reqs)
}

// Flush forces deferred writes (dirty write-back cache lines) down to
// the devices. It is a no-op without a cache, under WriteThrough, or
// after Close; with WriteBack the device state only reflects every
// submitted write after a Flush (or Close). Safe for concurrent use: it
// rides the issue queues as a barrier, covering everything submitted
// before it. On a device error during writeback the first failing
// shard's error is returned; affected lines stay dirty and a later
// Flush retries them.
func (m *ShardedMemory) Flush() error { return m.eng.Flush() }

// Close drains in-flight tickets, flushes deferred writes, and shuts
// down the issue queues. It is idempotent and safe for concurrent use.
// After Close, Submit and every wrapper over it (Apply, Write, Read,
// WriteBatch, ReadBatch) return ErrClosed; Stats, ShardStats, Counters
// and StuckCells keep working. Memories that live for the whole process
// need not be closed; write-back cached ones must be Flushed or Closed
// before their final statistics are read.
func (m *ShardedMemory) Close() { m.eng.Close() }

// Stats returns exact statistics merged across all shards.
func (m *ShardedMemory) Stats() Stats {
	s := m.eng.Stats()
	return Stats{
		LineWrites:      s.LineWrites,
		LineReads:       s.LineReads,
		EnergyPJ:        s.EnergyPJ,
		BitFlips:        s.BitFlips,
		CellChanges:     s.CellChanges,
		SAWCells:        s.SAWCells,
		FailedCells:     m.eng.FailedCells(),
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		CacheEvictions:  s.CacheEvictions,
		Writebacks:      s.Writebacks,
		CoalescedWrites: s.CoalescedWrites,
		RemappedLines:   s.RemappedLines,
		RepairFailures:  s.RepairFailures,
		DeviceErrors:    s.DeviceErrors,
		ErrorRetries:    s.ErrorRetries,
	}
}

// ShardStats returns the statistics of one shard, for load-balance
// inspection.
func (m *ShardedMemory) ShardStats(s int) Stats {
	st := m.eng.ShardStats(s)
	return Stats{
		LineWrites:      st.LineWrites,
		LineReads:       st.LineReads,
		EnergyPJ:        st.EnergyPJ,
		BitFlips:        st.BitFlips,
		CellChanges:     st.CellChanges,
		SAWCells:        st.SAWCells,
		CacheHits:       st.CacheHits,
		CacheMisses:     st.CacheMisses,
		CacheEvictions:  st.CacheEvictions,
		Writebacks:      st.Writebacks,
		CoalescedWrites: st.CoalescedWrites,
		RemappedLines:   st.RemappedLines,
		RepairFailures:  st.RepairFailures,
		DeviceErrors:    st.DeviceErrors,
		ErrorRetries:    st.ErrorRetries,
	}
}

// Counters returns live totals without taking shard locks; it can be
// polled from a monitoring goroutine while batches run.
func (m *ShardedMemory) Counters() LiveCounters { return m.eng.Counters() }

// ResetStats clears accumulated statistics (device state is untouched).
func (m *ShardedMemory) ResetStats() { m.eng.ResetStats() }

// StuckCells returns the current number of permanently stuck cells
// across all shards.
func (m *ShardedMemory) StuckCells() int { return m.eng.StuckCells() }

// DropCaches simulates losing the volatile decoded-line caches (a power
// cut): dirty write-back lines are discarded without reaching the
// devices, and subsequent reads observe whatever the persistent cells
// last stored. A no-op without a cache or under WriteThrough. Like
// Flush it rides the issue queues as a barrier.
func (m *ShardedMemory) DropCaches() { m.eng.DropCaches() }

// DirtyLines returns the sorted global line indices currently dirty in
// the write-back caches — exactly the writes DropCaches would lose.
// Empty on uncached and write-through memories.
func (m *ShardedMemory) DirtyLines() []int { return m.eng.DirtyLines() }

// FaultRepoStats sums runtime fault-repository traffic across shards
// (all zero unless UseFaultRepo was set).
func (m *ShardedMemory) FaultRepoStats() FaultRepoStats { return m.eng.FaultRepoStats() }

// SpareLinesLeft returns the unused repair spare lines across shards
// (zero unless RemapSpares was set).
func (m *ShardedMemory) SpareLinesLeft() int { return m.eng.SpareLinesLeft() }
