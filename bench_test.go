package vcc

// One testing.B benchmark per table and figure of the paper's evaluation
// (the regeneration harness required by DESIGN.md), plus micro-benchmarks
// of the encoder hot paths that the hardware-latency discussion rests on.
//
// Figure benches run the Quick-mode experiment drivers once per
// iteration; their value is end-to-end regeneration under `go test
// -bench`, not ns/op. Use cmd/vccrepro for human-readable tables.

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/experiments"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Quick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

func BenchmarkFig13Sim(b *testing.B)         { benchExperiment(b, "fig13-sim") }
func BenchmarkAblateKernels(b *testing.B)    { benchExperiment(b, "ablate-kernels") }
func BenchmarkAblateM(b *testing.B)          { benchExperiment(b, "ablate-m") }
func BenchmarkAblateHybrid(b *testing.B)     { benchExperiment(b, "ablate-hybrid") }
func BenchmarkAblateCost(b *testing.B)       { benchExperiment(b, "ablate-cost") }
func BenchmarkAblateWearLevel(b *testing.B)  { benchExperiment(b, "ablate-wearlevel") }
func BenchmarkAblateCompress(b *testing.B)   { benchExperiment(b, "ablate-compress") }
func BenchmarkAblateFaultRepo(b *testing.B)  { benchExperiment(b, "ablate-faultrepo") }
func BenchmarkAblateVisibility(b *testing.B) { benchExperiment(b, "ablate-visibility") }
func BenchmarkSLCEnergy(b *testing.B)        { benchExperiment(b, "slc-energy") }
func BenchmarkAblateCAFO(b *testing.B)       { benchExperiment(b, "ablate-cafo") }

// --- encoder micro-benchmarks -----------------------------------------

// benchEncode measures one codec's Encode over random MLC contexts.
func benchEncode(b *testing.B, codec coset.Codec) {
	b.Helper()
	rng := prng.New(1)
	n := codec.PlaneBits()
	ctx := coset.Ctx{N: n, Mode: pcm.MLC, MLCPlane: n == 32,
		OldWord: rng.Uint64(), NewLeft: rng.Uint64() & bitutil.Mask(32)}
	ev := coset.NewEvaluator(ctx, coset.ObjEnergySAW)
	data := rng.Uint64() & bitutil.Mask(n)
	b.ReportAllocs()
	b.ResetTimer()
	var sinkE, sinkA uint64
	for i := 0; i < b.N; i++ {
		sinkE, sinkA = codec.Encode(data^uint64(i), ev)
	}
	_, _ = sinkE, sinkA
}

func BenchmarkEncodeVCC256(b *testing.B) {
	benchEncode(b, coset.NewVCCStored(64, 16, 256, 1))
}

func BenchmarkEncodeVCCGenerated256(b *testing.B) {
	benchEncode(b, coset.NewVCCGenerated(16, 256))
}

func BenchmarkEncodeRCC256(b *testing.B) {
	benchEncode(b, coset.NewRCC(64, 256, 1))
}

func BenchmarkEncodeFNW(b *testing.B) {
	benchEncode(b, coset.NewFNW(64, 16))
}

func BenchmarkEncodeFlipcy(b *testing.B) {
	benchEncode(b, coset.NewFlipcy(64))
}

// BenchmarkEncodeComplexityRatio documents the paper's central
// complexity claim in running code: VCC evaluates the same 256-candidate
// space with ~2^(p-1) = 8x fewer full-width evaluations than RCC. The
// two benches above expose the constant factors; this one pins the
// work-count ratio structurally.
func BenchmarkEncodeComplexityRatio(b *testing.B) {
	vccCodec := coset.NewVCCStored(64, 16, 256, 1)
	rcc := coset.NewRCC(64, 256, 1)
	// Work units: per Section IV, RCC applies N = r*2^p full-width coset
	// evaluations; VCC applies 2*r*p partition evaluations = 2*r full
	// widths.
	vccWork := 2 * vccCodec.NumKernels()
	rccWork := rcc.NumCosets()
	if rccWork/vccWork != 8 {
		b.Fatalf("complexity ratio %d, want 8 (=2^(p-1))", rccWork/vccWork)
	}
	benchEncode(b, vccCodec)
}

// --- memory write-path benchmark ---------------------------------------

func BenchmarkMemoryWriteLine(b *testing.B) {
	mem, err := NewMemory(MemoryConfig{Lines: 4096, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := prng.New(2)
	buf := make([]byte, LineSize)
	rng.Fill(buf)
	b.SetBytes(LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Write(i%4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryReadLine(b *testing.B) {
	mem, err := NewMemory(MemoryConfig{Lines: 1024, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, LineSize)
	rng := prng.New(4)
	rng.Fill(buf)
	for l := 0; l < 1024; l++ {
		mem.Write(l, buf)
	}
	b.SetBytes(LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Read(i%1024, buf); err != nil {
			b.Fatal(err)
		}
	}
}
