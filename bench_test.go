package vcc

// One testing.B benchmark per table and figure of the paper's evaluation
// (the regeneration harness required by DESIGN.md), plus micro-benchmarks
// of the encoder hot paths that the hardware-latency discussion rests on.
//
// Figure benches run the Quick-mode experiment drivers once per
// iteration; their value is end-to-end regeneration under `go test
// -bench`, not ns/op. Use cmd/vccrepro for human-readable tables.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/experiments"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/workload"
)

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Quick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

func BenchmarkFig13Sim(b *testing.B)         { benchExperiment(b, "fig13-sim") }
func BenchmarkAblateKernels(b *testing.B)    { benchExperiment(b, "ablate-kernels") }
func BenchmarkAblateM(b *testing.B)          { benchExperiment(b, "ablate-m") }
func BenchmarkAblateHybrid(b *testing.B)     { benchExperiment(b, "ablate-hybrid") }
func BenchmarkAblateCost(b *testing.B)       { benchExperiment(b, "ablate-cost") }
func BenchmarkAblateWearLevel(b *testing.B)  { benchExperiment(b, "ablate-wearlevel") }
func BenchmarkAblateCompress(b *testing.B)   { benchExperiment(b, "ablate-compress") }
func BenchmarkAblateFaultRepo(b *testing.B)  { benchExperiment(b, "ablate-faultrepo") }
func BenchmarkAblateVisibility(b *testing.B) { benchExperiment(b, "ablate-visibility") }
func BenchmarkSLCEnergy(b *testing.B)        { benchExperiment(b, "slc-energy") }
func BenchmarkAblateCAFO(b *testing.B)       { benchExperiment(b, "ablate-cafo") }
func BenchmarkShardReplay(b *testing.B)      { benchExperiment(b, "shard-replay") }
func BenchmarkWorkloadSweep(b *testing.B)    { benchExperiment(b, "workload-sweep") }
func BenchmarkCacheSweep(b *testing.B)       { benchExperiment(b, "cache-sweep") }
func BenchmarkAsyncSweep(b *testing.B)       { benchExperiment(b, "async-sweep") }

// --- encoder micro-benchmarks -----------------------------------------

// benchEncode measures one codec's Encode over random MLC contexts.
func benchEncode(b *testing.B, codec coset.Codec) {
	b.Helper()
	rng := prng.New(1)
	n := codec.PlaneBits()
	ctx := coset.Ctx{N: n, Mode: pcm.MLC, MLCPlane: n == 32,
		OldWord: rng.Uint64(), NewLeft: rng.Uint64() & bitutil.Mask(32)}
	ev := coset.NewEvaluator(ctx, coset.ObjEnergySAW)
	data := rng.Uint64() & bitutil.Mask(n)
	b.ReportAllocs()
	b.ResetTimer()
	var sinkE, sinkA uint64
	for i := 0; i < b.N; i++ {
		sinkE, sinkA = codec.Encode(data^uint64(i), ev)
	}
	_, _ = sinkE, sinkA
}

func BenchmarkEncodeVCC256(b *testing.B) {
	benchEncode(b, coset.NewVCCStored(64, 16, 256, 1))
}

func BenchmarkEncodeVCCGenerated256(b *testing.B) {
	benchEncode(b, coset.NewVCCGenerated(16, 256))
}

func BenchmarkEncodeRCC256(b *testing.B) {
	benchEncode(b, coset.NewRCC(64, 256, 1))
}

func BenchmarkEncodeFNW(b *testing.B) {
	benchEncode(b, coset.NewFNW(64, 16))
}

func BenchmarkEncodeFlipcy(b *testing.B) {
	benchEncode(b, coset.NewFlipcy(64))
}

// BenchmarkEncodeComplexityRatio documents the paper's central
// complexity claim in running code: VCC evaluates the same 256-candidate
// space with ~2^(p-1) = 8x fewer full-width evaluations than RCC. The
// two benches above expose the constant factors; this one pins the
// work-count ratio structurally.
func BenchmarkEncodeComplexityRatio(b *testing.B) {
	vccCodec := coset.NewVCCStored(64, 16, 256, 1)
	rcc := coset.NewRCC(64, 256, 1)
	// Work units: per Section IV, RCC applies N = r*2^p full-width coset
	// evaluations; VCC applies 2*r*p partition evaluations = 2*r full
	// widths.
	vccWork := 2 * vccCodec.NumKernels()
	rccWork := rcc.NumCosets()
	if rccWork/vccWork != 8 {
		b.Fatalf("complexity ratio %d, want 8 (=2^(p-1))", rccWork/vccWork)
	}
	benchEncode(b, vccCodec)
}

// --- memory write-path benchmark ---------------------------------------

func BenchmarkMemoryWriteLine(b *testing.B) {
	mem, err := NewMemory(MemoryConfig{Lines: 4096, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := prng.New(2)
	buf := make([]byte, LineSize)
	rng.Fill(buf)
	b.SetBytes(LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Write(i%4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sharded engine throughput ------------------------------------------
//
// BenchmarkShardedWrite reports batched write throughput (bytes/sec;
// divide by 64 for lines/sec) of the concurrent engine across shard
// counts, for MLC and SLC and all four encoder families. The batch
// addresses round-robin the full line space, so the interleaved
// partition keeps every shard busy. Batches go through the mixed op
// path (Apply) with reused op and outcome buffers: with ReportAllocs
// the steady-state write hot path must measure 0 allocs/op — the
// zero-allocation acceptance criterion (also pinned by
// TestApplySteadyStateAllocs).

// shardedEncoders are the encoder families under benchmark. Factories,
// not instances: each shard owns a private codec.
var shardedEncoders = []struct {
	name string
	mk   func() Encoder
}{
	{"VCC256", func() Encoder { return NewVCCEncoder(256) }},
	{"RCC256", func() Encoder { return NewRCCEncoder(256) }},
	{"FNW16", func() Encoder { return NewFNWEncoder(16) }},
	{"Flipcy", func() Encoder { return NewFlipcyEncoder() }},
}

func benchShardedWrite(b *testing.B, shards int, slc bool, mk func() Encoder) {
	b.Helper()
	const (
		lines     = 1 << 13
		batchSize = 1024
	)
	mem, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: lines, Shards: shards, Workers: shards,
		NewEncoder: mk, SLC: slc, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mem.Close()
	rng := prng.New(2)
	ops := make([]Op, batchSize)
	for i := range ops {
		data := make([]byte, LineSize)
		rng.Fill(data)
		ops[i] = Op{Kind: OpWrite, Line: (i * 7) % lines, Data: data}
	}
	outs := make([]Outcome, batchSize)
	if outs, err = mem.Apply(ops, outs); err != nil { // warm the dispatch plan
		b.Fatal(err)
	}
	b.SetBytes(int64(batchSize) * LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if outs, err = mem.Apply(ops, outs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedWrite(b *testing.B) {
	for _, cell := range []struct {
		name string
		slc  bool
	}{{"MLC", false}, {"SLC", true}} {
		for _, enc := range shardedEncoders {
			for _, shards := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/shards=%d", cell.name, enc.name, shards),
					func(b *testing.B) { benchShardedWrite(b, shards, cell.slc, enc.mk) })
			}
		}
	}
}

// BenchmarkShardedMixed drives interleaved read/write batches through
// Apply at several read fractions (VCC 256, MLC), with reused op,
// data and outcome buffers — the mixed-path throughput and allocation
// evidence. Reads get faster and writes dominate energy, so ns/op
// falls as the read fraction rises.
func BenchmarkShardedMixed(b *testing.B) {
	const (
		lines     = 1 << 13
		batchSize = 1024
	)
	for _, readFrac := range []float64{0.25, 0.5, 0.75} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("readfrac=%.2f/shards=%d", readFrac, shards), func(b *testing.B) {
				mem, err := NewShardedMemory(ShardedMemoryConfig{
					Lines: lines, Shards: shards, Workers: shards, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer mem.Close()
				rng := prng.New(3)
				ops := make([]Op, batchSize)
				for i := range ops {
					data := make([]byte, LineSize)
					rng.Fill(data)
					kind := OpWrite
					if rng.Float64() < readFrac {
						kind = OpRead
					}
					ops[i] = Op{Kind: kind, Line: (i * 7) % lines, Data: data}
				}
				outs := make([]Outcome, batchSize)
				if outs, err = mem.Apply(ops, outs); err != nil { // warm the dispatch plan
					b.Fatal(err)
				}
				b.SetBytes(int64(batchSize) * LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if outs, err = mem.Apply(ops, outs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedCached measures what the decoded-line cache buys on a
// hit-heavy ZipfHot mixed workload (VCC 256, MLC, read fraction 0.75):
// the same op batch through an uncached engine, a write-through cache
// (hits skip decode+decrypt) and a write-back cache (plus deferred,
// coalesced device writebacks). Cached variants must beat uncached on
// both ns/op and, for write-back, device LineWrites — the PR's
// performance acceptance criterion. Steady state stays 0 allocs/op.
func BenchmarkShardedCached(b *testing.B) {
	const (
		lines     = 1 << 13
		batchSize = 1024
		cacheSz   = 512
	)
	for _, variant := range []struct {
		name       string
		cacheLines int
		policy     CachePolicy
	}{
		{"uncached", 0, WriteThrough},
		{"writethrough", cacheSz, WriteThrough},
		{"writeback", cacheSz, WriteBack},
	} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", variant.name, shards), func(b *testing.B) {
				mem, err := NewShardedMemory(ShardedMemoryConfig{
					Lines: lines, Shards: shards, Workers: shards, Seed: 1,
					CacheLines:  variant.cacheLines,
					CachePolicy: variant.policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer mem.Close()
				zipf := workload.NewZipfHot(lines, 1.3, prng.NewFrom(1, "bench-cached-zipf"))
				zrng := prng.NewFrom(1, "bench-cached-lines")
				rng := prng.New(3)
				ops := make([]Op, batchSize)
				for i := range ops {
					data := make([]byte, LineSize)
					rng.Fill(data)
					kind := OpWrite
					if rng.Float64() < 0.75 {
						kind = OpRead
					}
					ops[i] = Op{Kind: kind, Line: int(zipf.NextLine(zrng)), Data: data}
				}
				outs := make([]Outcome, batchSize)
				if outs, err = mem.Apply(ops, outs); err != nil { // warm plan + cache
					b.Fatal(err)
				}
				b.SetBytes(int64(batchSize) * LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if outs, err = mem.Apply(ops, outs); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := mem.Stats()
				if variant.cacheLines > 0 && st.CacheHits+st.CacheMisses > 0 {
					b.ReportMetric(100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), "hit%")
				}
			})
		}
	}
}

// BenchmarkShardedAsync measures the pipelined Submit/Wait path (VCC
// 256, MLC, mixed 0.5 read fraction) across in-flight depths and shard
// counts: each iteration submits one batch and waits only for the
// oldest in-flight ticket, exactly like a pipelined producer. Depth 1
// is the synchronous baseline (Submit immediately followed by Wait).
// With ReportAllocs the steady state must measure 0 allocs/op — the
// pooled-ticket acceptance criterion (also pinned by
// TestSubmitSteadyStateAllocs). Producer/consumer overlap only shows
// wall-clock gains on multi-core hosts; on one core the deeper
// pipelines just document the queue-handoff overhead.
func BenchmarkShardedAsync(b *testing.B) {
	const (
		lines     = 1 << 13
		batchSize = 1024
	)
	for _, depth := range []int{1, 4, 16} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("inflight=%d/shards=%d", depth, shards), func(b *testing.B) {
				mem, err := NewShardedMemory(ShardedMemoryConfig{
					Lines: lines, Shards: shards, Workers: shards, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer mem.Close()
				sess := mem.Session()
				rng := prng.New(3)
				type slot struct {
					ops []Op
					out []Outcome
					tk  *Ticket
				}
				slots := make([]slot, depth)
				for s := range slots {
					slots[s].ops = make([]Op, batchSize)
					slots[s].out = make([]Outcome, batchSize)
					for i := range slots[s].ops {
						data := make([]byte, LineSize)
						rng.Fill(data)
						kind := OpWrite
						if rng.Float64() < 0.5 {
							kind = OpRead
						}
						slots[s].ops[i] = Op{Kind: kind, Line: (s*batchSize + i*7) % lines, Data: data}
					}
				}
				rotate := func(s int) {
					sl := &slots[s%depth]
					if sl.tk != nil {
						if _, err := sl.tk.Wait(); err != nil {
							b.Fatal(err)
						}
					}
					tk, err := sess.Submit(sl.ops, sl.out)
					if err != nil {
						b.Fatal(err)
					}
					sl.tk = tk
				}
				for s := 0; s < 2*depth; s++ { // warm tickets, plans and pipeline
					rotate(s)
				}
				b.SetBytes(int64(batchSize) * LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rotate(i)
				}
				b.StopTimer()
				for s := range slots {
					if slots[s].tk != nil {
						if _, err := slots[s].tk.Wait(); err != nil {
							b.Fatal(err)
						}
						slots[s].tk = nil
					}
				}
			})
		}
	}
}

// BenchmarkShardedMultiProducer measures queue contention under
// concurrent submitters (the ROADMAP's multi-producer saturation
// bench): several goroutines, each with a private Session and its own
// depth-4 pipeline of mixed batches, submit concurrently into the same
// 4-shard engine, swept over QueueDepth. One benchmark op is one batch
// submitted+retired somewhere in the fleet, so ns/op directly compares
// contended against single-producer submission (BenchmarkShardedAsync);
// shallow queues (QueueDepth=1) serialize producers against the
// drainers and document the backpressure cost, deep queues let them
// saturate. On this repo's 1-core CI-class hosts the sweep measures
// queue handoff overhead; wall-clock scaling appears on multi-core.
func BenchmarkShardedMultiProducer(b *testing.B) {
	const (
		lines     = 1 << 13
		batchSize = 256
		pipeDepth = 4
		shards    = 4
	)
	for _, producers := range []int{2, 4} {
		for _, queueDepth := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("producers=%d/qdepth=%d", producers, queueDepth), func(b *testing.B) {
				mem, err := NewShardedMemory(ShardedMemoryConfig{
					Lines: lines, Shards: shards, Workers: shards, Seed: 1,
					QueueDepth: queueDepth,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer mem.Close()
				type slot struct {
					ops []Op
					out []Outcome
					tk  *Ticket
				}
				type producer struct {
					sess  *Session
					slots []slot
				}
				rng := prng.New(3)
				prods := make([]*producer, producers)
				for pi := range prods {
					p := &producer{sess: mem.Session(), slots: make([]slot, pipeDepth)}
					for s := range p.slots {
						p.slots[s].ops = make([]Op, batchSize)
						p.slots[s].out = make([]Outcome, batchSize)
						for i := range p.slots[s].ops {
							data := make([]byte, LineSize)
							rng.Fill(data)
							kind := OpWrite
							if rng.Float64() < 0.5 {
								kind = OpRead
							}
							p.slots[s].ops[i] = Op{Kind: kind,
								Line: (pi*1009 + s*batchSize + i*7) % lines, Data: data}
						}
					}
					prods[pi] = p
				}
				work := func(p *producer, batches int) error {
					for n := 0; n < batches; n++ {
						sl := &p.slots[n%pipeDepth]
						if sl.tk != nil {
							if _, err := sl.tk.Wait(); err != nil {
								return err
							}
						}
						tk, err := p.sess.Submit(sl.ops, sl.out)
						if err != nil {
							return err
						}
						sl.tk = tk
					}
					for s := range p.slots {
						if p.slots[s].tk != nil {
							if _, err := p.slots[s].tk.Wait(); err != nil {
								return err
							}
							p.slots[s].tk = nil
						}
					}
					return nil
				}
				for _, p := range prods { // warm tickets, plans and caches
					if err := work(p, 2*pipeDepth); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(batchSize) * LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				errs := make([]error, producers)
				for pi, p := range prods {
					// Producer pi takes batches pi, pi+producers, ... of b.N.
					n := b.N / producers
					if pi < b.N%producers {
						n++
					}
					wg.Add(1)
					go func(pi int, p *producer, n int) {
						defer wg.Done()
						errs[pi] = work(p, n)
					}(pi, p, n)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedRead is the read-path counterpart at the headline
// configuration (VCC 256, MLC).
func BenchmarkShardedRead(b *testing.B) {
	const (
		lines     = 1 << 12
		batchSize = 1024
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			mem, err := NewShardedMemory(ShardedMemoryConfig{
				Lines: lines, Shards: shards, Workers: shards, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := prng.New(3)
			buf := make([]byte, LineSize)
			for l := 0; l < lines; l++ {
				rng.Fill(buf)
				if _, err := mem.Write(l, buf); err != nil {
					b.Fatal(err)
				}
			}
			reqs := make([]ReadRequest, batchSize)
			for i := range reqs {
				reqs[i] = ReadRequest{Line: (i * 5) % lines, Dst: make([]byte, LineSize)}
			}
			b.SetBytes(int64(batchSize) * LineSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mem.ReadBatch(reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMemoryReadLine(b *testing.B) {
	mem, err := NewMemory(MemoryConfig{Lines: 1024, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, LineSize)
	rng := prng.New(4)
	rng.Fill(buf)
	for l := 0; l < 1024; l++ {
		mem.Write(l, buf)
	}
	b.SetBytes(LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Read(i%1024, buf); err != nil {
			b.Fatal(err)
		}
	}
}
