// Encrypted store: a tiny persistent key-value store running on
// simulated encrypted PCM with Virtual Coset Coding — the paper's
// deployment scenario (non-volatile main memory whose contents must be
// useless to a physical attacker) made concrete.
//
// The store places fixed-size records into cache lines of a vcc.Memory
// with a 1e-2 stuck-at fault rate, the paper's "extreme wear snapshot".
// Because the encoder's cost function masks stuck-at-wrong cells, the
// store keeps returning correct data on a memory that would corrupt
// roughly a quarter of unencoded lines.
//
// Run with: go run ./examples/encrypted_store
package main

import (
	"bytes"
	"fmt"
	"log"

	vcc "repro"
)

// record is a fixed-width key/value pair filling one cache line.
type record struct {
	Key   [16]byte
	Value [48]byte
}

func (r *record) marshal() []byte {
	out := make([]byte, vcc.LineSize)
	copy(out[:16], r.Key[:])
	copy(out[16:], r.Value[:])
	return out
}

func unmarshal(b []byte) record {
	var r record
	copy(r.Key[:], b[:16])
	copy(r.Value[:], b[16:])
	return r
}

// store maps keys to lines with open addressing over the memory.
type store struct {
	mem   *vcc.Memory
	index map[[16]byte]int
	next  int
}

func newStore(mem *vcc.Memory) *store {
	return &store{mem: mem, index: make(map[[16]byte]int)}
}

func (s *store) Put(key string, value []byte) error {
	var r record
	copy(r.Key[:], key)
	copy(r.Value[:], value)
	line, ok := s.index[r.Key]
	if !ok {
		if s.next >= s.mem.Lines() {
			return fmt.Errorf("store full")
		}
		line = s.next
		s.next++
		s.index[r.Key] = line
	}
	saw, err := s.mem.Write(line, r.marshal())
	if err != nil {
		return err
	}
	if saw > 0 {
		// The encoder could not fully mask the line's stuck cells; a
		// production controller would remap here (cf. ECP/start-gap).
		return fmt.Errorf("line %d stored with %d wrong cells", line, saw)
	}
	return nil
}

func (s *store) Get(key string) ([]byte, error) {
	var k [16]byte
	copy(k[:], key)
	line, ok := s.index[k]
	if !ok {
		return nil, fmt.Errorf("key %q not found", key)
	}
	raw, err := s.mem.Read(line, nil)
	if err != nil {
		return nil, err
	}
	r := unmarshal(raw)
	if r.Key != k {
		return nil, fmt.Errorf("key %q corrupted in memory", key)
	}
	return r.Value[:], nil
}

func main() {
	mem, err := vcc.NewMemory(vcc.MemoryConfig{
		Lines:     512,
		Encoder:   vcc.NewVCCEncoder(256),
		Objective: vcc.OptSAW, // mask faults first, save energy second
		FaultRate: 1e-2,       // the paper's extreme-wear snapshot
		Seed:      2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory: %d lines, %d stuck cells\n", mem.Lines(), mem.StuckCells())

	st := newStore(mem)
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	failures := 0
	for round := 0; round < 50; round++ {
		for i, k := range keys {
			val := fmt.Sprintf("value-%s-round-%03d", k, round)
			if err := st.Put(k, []byte(val)); err != nil {
				failures++
				continue
			}
			got, err := st.Get(k)
			if err != nil {
				log.Fatalf("get %q: %v", k, err)
			}
			if !bytes.HasPrefix(got, []byte(val)) {
				log.Fatalf("round %d key %d: corrupted value", round, i)
			}
		}
	}
	s := mem.Stats()
	fmt.Printf("writes: %d, unmaskable-line events: %d\n", s.LineWrites, failures)
	fmt.Printf("total SAW cells across all writes: %d\n", s.SAWCells)
	fmt.Printf("write energy: %.2f nJ\n", s.EnergyPJ/1000)
	fmt.Println("all reads returned correct plaintext despite the faulty, encrypted medium")
}
