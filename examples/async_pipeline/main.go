// Async pipeline: keep several tickets in flight through a sharded
// memory's per-shard issue queues, overlapping op-stream generation
// with encrypt+encode work across shards, then drain and compare
// against the synchronous path.
//
// Run with: go run ./examples/async_pipeline
package main

import (
	"fmt"
	"log"
	"time"

	vcc "repro"
	"repro/internal/prng"
)

const (
	lines = 1 << 14
	batch = 512
	depth = 8  // tickets in flight
	total = 64 // batches per run
)

// buildBatches pregenerates a deterministic mixed op stream, one slot
// per in-flight ticket, each with its own reusable buffers.
func buildBatches(seed uint64) [][]vcc.Op {
	rng := prng.New(seed)
	slots := make([][]vcc.Op, depth)
	for s := range slots {
		ops := make([]vcc.Op, batch)
		for i := range ops {
			data := make([]byte, vcc.LineSize)
			rng.Fill(data)
			kind := vcc.OpWrite
			if rng.Float64() < 0.6 {
				kind = vcc.OpRead
			}
			ops[i] = vcc.Op{Kind: kind, Line: rng.Intn(lines), Data: data}
		}
		slots[s] = ops
	}
	return slots
}

func newMemory() *vcc.ShardedMemory {
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:      lines,
		Shards:     4,
		Workers:    4,
		QueueDepth: depth, // per-shard backpressure bound
		NewEncoder: func() vcc.Encoder { return vcc.NewVCCEncoder(256) },
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	return mem
}

func main() {
	slots := buildBatches(7)

	// Synchronous baseline: Apply blocks the producer on every batch.
	syncMem := newMemory()
	start := time.Now()
	outs := make([][]vcc.Outcome, depth)
	for i := 0; i < total; i++ {
		var err error
		s := i % depth
		if outs[s], err = syncMem.Apply(slots[s], outs[s]); err != nil {
			log.Fatal(err)
		}
	}
	syncElapsed := time.Since(start)
	syncStats := syncMem.Stats()
	syncMem.Close()

	// Async pipeline: Submit returns immediately with a Ticket; the
	// producer only waits when a slot's previous ticket is still open,
	// so up to `depth` batches encode while the next ones are prepared.
	mem := newMemory()
	defer mem.Close()
	sess := mem.Session()
	tickets := make([]*vcc.Ticket, depth)
	start = time.Now()
	for i := 0; i < total; i++ {
		s := i % depth
		if tickets[s] != nil {
			if _, err := tickets[s].Wait(); err != nil {
				log.Fatal(err)
			}
		}
		tk, err := sess.Submit(slots[s], outs[s])
		if err != nil {
			log.Fatal(err)
		}
		tickets[s] = tk
	}
	for s := range tickets {
		if tickets[s] != nil {
			if _, err := tickets[s].Wait(); err != nil {
				log.Fatal(err)
			}
		}
	}
	sess.Drain()
	asyncElapsed := time.Since(start)
	st := mem.Stats()

	fmt.Printf("ops submitted:   %d (%d writes, %d reads)\n",
		st.LineWrites+st.LineReads, st.LineWrites, st.LineReads)
	fmt.Printf("sync  elapsed:   %v\n", syncElapsed)
	fmt.Printf("async elapsed:   %v (%d tickets in flight)\n", asyncElapsed, depth)
	fmt.Printf("identical stats: %v\n", st == syncStats)
	fmt.Println("note: overlap only shows wall-clock gains on multi-core hosts;")
	fmt.Println("      the statistics are bit-identical at any in-flight depth.")
}
