// Lifetime extension: age an endurance-limited MLC PCM memory under a
// skewed writeback stream and compare how long each protection technique
// keeps it serviceable — a miniature of the paper's Fig. 11.
//
// Run with: go run ./examples/lifetime_extension
package main

import (
	"fmt"
	"log"

	"repro/internal/lifetime"
	"repro/internal/trace"
)

func main() {
	bm, err := trace.SpecByName("mcf_s") // pointer-chasing, hot-spot heavy
	if err != nil {
		log.Fatal(err)
	}
	params := lifetime.DefaultParams(bm, 1)
	params.Rows = 128        // scaled memory
	params.MeanWrites = 1200 // scaled endurance (wear units)

	fmt.Printf("aging %d rows (mean endurance %.0f wear units) on %s writebacks\n",
		params.Rows, params.MeanWrites, bm.Name)
	fmt.Printf("%-10s  %12s  %18s\n", "technique", "row writes", "vs unencoded")

	seeds := []uint64{10, 20, 30}
	var base float64
	for _, tech := range []lifetime.Technique{
		lifetime.Unencoded, lifetime.Flipcy, lifetime.SECDED,
		lifetime.ECP3, lifetime.DBIFNW, lifetime.VCC, lifetime.RCC,
	} {
		mean, _ := lifetime.RunSeeds(tech, params, seeds)
		if tech == lifetime.Unencoded {
			base = mean
		}
		fmt.Printf("%-10s  %12.0f  %17.0f%%\n", tech, mean, 100*(mean/base-1))
	}
	fmt.Println("\nVCC/RCC survive more dead cells per word (coset masking) and wear")
	fmt.Println("cells slower (energy-aware candidates avoid the costly intermediate")
	fmt.Println("states), which is where the paper's >=50% lifetime extension comes from.")
}
