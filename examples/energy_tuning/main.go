// Energy tuning: sweep the VCC design space — virtual-coset count,
// kernel source, and cost-function ordering — on one workload and print
// the energy/SAW trade-offs a memory-controller architect would weigh
// (the paper's Section V design-space exploration in miniature).
//
// Run with: go run ./examples/energy_tuning
package main

import (
	"fmt"
	"log"

	vcc "repro"
	"repro/internal/prng"
)

const lines = 2048

func run(enc vcc.Encoder, obj vcc.Objective, seed uint64) (energyPJ float64, saw int64) {
	mem, err := vcc.NewMemory(vcc.MemoryConfig{
		Lines: lines, Encoder: enc, Objective: obj,
		FaultRate: 1e-2, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := prng.New(seed ^ 0xDA7A)
	buf := make([]byte, vcc.LineSize)
	for l := 0; l < lines; l++ {
		rng.Fill(buf)
		if _, err := mem.Write(l, buf); err != nil {
			log.Fatal(err)
		}
	}
	st := mem.Stats()
	return st.EnergyPJ, st.SAWCells
}

func main() {
	const seed = 7
	baseE, baseSAW := run(vcc.NewUnencoded(), vcc.OptEnergy, seed)
	fmt.Printf("unencoded baseline: %.0f pJ, %d SAW cells\n\n", baseE, baseSAW)
	fmt.Printf("%-28s %-12s %10s %8s %10s %8s\n",
		"encoder", "objective", "energy_pJ", "saving", "SAW", "masked")

	type cfg struct {
		name string
		enc  vcc.Encoder
		obj  vcc.Objective
	}
	var cfgs []cfg
	for _, n := range []int{32, 64, 128, 256} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("VCC stored N=%d", n),
			vcc.NewVCCEncoder(n), vcc.OptEnergy})
	}
	cfgs = append(cfgs,
		cfg{"VCC stored N=256 (SAW 1st)", vcc.NewVCCEncoder(256), vcc.OptSAW},
		cfg{"VCC generated N=256", vcc.NewVCCGeneratedEncoder(256), vcc.OptEnergy},
		cfg{"RCC N=256", vcc.NewRCCEncoder(256), vcc.OptEnergy},
		cfg{"DBI/FNW k=16", vcc.NewFNWEncoder(16), vcc.OptEnergy},
		cfg{"Flipcy", vcc.NewFlipcyEncoder(), vcc.OptEnergy},
	)
	for _, c := range cfgs {
		e, s := run(c.enc, c.obj, seed)
		fmt.Printf("%-28s %-12s %10.0f %7.1f%% %10d %7.1f%%\n",
			c.name, c.obj, e, 100*(1-e/baseE), s,
			100*(1-float64(s)/float64(baseSAW)))
	}
	fmt.Println("\nreading the table: more virtual cosets buy more energy savings; the")
	fmt.Println("cost ordering decides what the spare freedom is spent on — energy-first")
	fmt.Println("almost never ties, so fault masking needs the SAW-first ordering, which")
	fmt.Println("still keeps most of the energy win (the paper's Opt.SAW result).")
}
