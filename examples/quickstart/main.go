// Quickstart: write one encrypted cache line through Virtual Coset
// Coding into a simulated MLC PCM memory, read it back, and inspect the
// write-energy accounting.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	vcc "repro"
)

func main() {
	mem, err := vcc.NewMemory(vcc.MemoryConfig{
		Lines:     1024,                   // 64 KiB of simulated MLC PCM
		Encoder:   vcc.NewVCCEncoder(256), // the paper's VCC(64,256,16)
		Objective: vcc.OptEnergy,          // minimize energy, then SAW
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A cache line of very biased plaintext: without encryption this
	// would be trivially compressible; with AES-CTR in the path, the
	// cells see uniformly random bits — which is the entire reason VCC
	// exists.
	line := bytes.Repeat([]byte("Go!"), 22)[:vcc.LineSize]

	if _, err := mem.Write(7, line); err != nil {
		log.Fatal(err)
	}
	back, err := mem.Read(7, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(back, line) {
		log.Fatal("round trip failed")
	}
	fmt.Printf("round trip OK: %q...\n", back[:12])

	st := mem.Stats()
	fmt.Printf("line writes:   %d\n", st.LineWrites)
	fmt.Printf("write energy:  %.1f pJ\n", st.EnergyPJ)
	fmt.Printf("cell changes:  %d of %d cells\n", st.CellChanges, 8*32)

	// Compare against writing the same data unencoded.
	plain, _ := vcc.NewMemory(vcc.MemoryConfig{
		Lines: 1024, Encoder: vcc.NewUnencoded(), Seed: 42,
	})
	plain.Write(7, line)
	fmt.Printf("unencoded:     %.1f pJ for the same line\n", plain.Stats().EnergyPJ)
	fmt.Printf("VCC saving:    %.1f%%\n",
		100*(1-st.EnergyPJ/plain.Stats().EnergyPJ))
}
