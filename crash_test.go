package vcc

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/prng"
)

// TestCrashRecoveryOracle kills the write-back cache layer mid-stream
// (DropCaches — no Flush) and checks the recovered device against
// write-through oracle semantics. Phase 1 writes every line and
// flushes, committing all of it; phase 2 rewrites a subset exactly once
// without flushing. With one uncommitted write per line, the dirty-set
// snapshot taken at the crash point fully determines device state: a
// dirty line's rewrite was lost (the device keeps phase-1 content), an
// evicted line's rewrite was committed (the device holds phase-2
// content), and untouched lines keep phase-1. Every readable line must
// match that oracle exactly — byte-for-byte, across shards.
func TestCrashRecoveryOracle(t *testing.T) {
	for _, shards := range []int{1, 3} {
		const lines = 120
		m, err := NewShardedMemory(ShardedMemoryConfig{
			Lines:       lines,
			Shards:      shards,
			Seed:        11,
			NewEncoder:  func() Encoder { return NewVCCEncoder(64) },
			CacheLines:  5, // well below the rewrite footprint: forced evictions
			CachePolicy: WriteBack,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := prng.New(99)
		phase1 := make([][]byte, lines)
		phase2 := make([][]byte, lines)
		for l := 0; l < lines; l++ {
			phase1[l] = make([]byte, LineSize)
			rng.Fill(phase1[l])
			if _, err := m.Write(l, phase1[l]); err != nil {
				t.Fatal(err)
			}
		}
		m.Flush()
		if got := m.DirtyLines(); len(got) != 0 {
			t.Fatalf("shards=%d: %d dirty lines after Flush, want 0", shards, len(got))
		}

		rewritten := map[int]bool{}
		for l := 0; l < lines; l += 3 {
			phase2[l] = make([]byte, LineSize)
			rng.Fill(phase2[l])
			if _, err := m.Write(l, phase2[l]); err != nil {
				t.Fatal(err)
			}
			rewritten[l] = true
		}

		dirty := m.DirtyLines()
		if !sort.IntsAreSorted(dirty) {
			t.Errorf("shards=%d: DirtyLines not sorted: %v", shards, dirty)
		}
		isDirty := map[int]bool{}
		for _, l := range dirty {
			if !rewritten[l] {
				t.Errorf("shards=%d: line %d dirty but never rewritten", shards, l)
			}
			isDirty[l] = true
		}
		if len(dirty) == 0 {
			t.Fatalf("shards=%d: no dirty lines at crash point", shards)
		}
		if len(dirty) == len(rewritten) {
			t.Fatalf("shards=%d: every rewrite still dirty — no evictions, oracle split is trivial", shards)
		}

		m.DropCaches() // power cut: volatile layer gone, device state survives

		for l := 0; l < lines; l++ {
			want := phase1[l]
			if rewritten[l] && !isDirty[l] {
				want = phase2[l]
			}
			got, err := m.Read(l, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d: line %d recovered wrong content (dirty=%v rewritten=%v)",
					shards, l, isDirty[l], rewritten[l])
			}
		}
		m.Close()
	}
}

// TestDropCachesNoopUncached pins DropCaches and DirtyLines as no-ops
// on engines without a cache and after Close.
func TestDropCachesNoopUncached(t *testing.T) {
	m, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: 16, Seed: 3, NewEncoder: func() Encoder { return NewVCCEncoder(16) },
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, LineSize)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := m.Write(5, data); err != nil {
		t.Fatal(err)
	}
	if d := m.DirtyLines(); len(d) != 0 {
		t.Errorf("uncached engine reports dirty lines: %v", d)
	}
	m.DropCaches()
	got, err := m.Read(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("DropCaches on an uncached engine disturbed device state")
	}
	m.Close()
	m.DropCaches() // must not panic or hang after Close
}
