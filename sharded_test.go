package vcc

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/prng"
)

// fullConfig exercises every stochastic subsystem at once: MLC cells,
// encryption, a fault map and endurance tracking.
func fullConfig(lines int, seed uint64) MemoryConfig {
	return MemoryConfig{
		Lines:           lines,
		Encoder:         NewVCCEncoder(256),
		Objective:       OptEnergy,
		Key:             [32]byte{1, 2, 3},
		FaultRate:       1e-2,
		EnduranceWrites: 5e3,
		Seed:            seed,
	}
}

func shardedFrom(cfg MemoryConfig, shards, workers int) ShardedMemoryConfig {
	return ShardedMemoryConfig{
		Lines:           cfg.Lines,
		Shards:          shards,
		Workers:         workers,
		NewEncoder:      func() Encoder { return NewVCCEncoder(256) },
		Objective:       cfg.Objective,
		Key:             cfg.Key,
		FaultRate:       cfg.FaultRate,
		EnduranceWrites: cfg.EnduranceWrites,
		Seed:            cfg.Seed,
	}
}

// TestShardedSingleShardBitIdentical is the acceptance criterion: a
// one-shard ShardedMemory must reproduce Memory bit for bit — same
// seed, same write sequence, identical Stats (exact float equality),
// identical cell contents and stuck-cell counts.
func TestShardedSingleShardBitIdentical(t *testing.T) {
	const lines = 256
	cfg := fullConfig(lines, 42)
	seq, err := NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedMemory(shardedFrom(cfg, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if sh.StuckCells() != seq.StuckCells() {
		t.Fatalf("initial stuck cells differ: sharded %d, sequential %d",
			sh.StuckCells(), seq.StuckCells())
	}

	rng := prng.New(99)
	var batch []WriteRequest
	for i := 0; i < 2000; i++ {
		line := rng.Intn(lines)
		data := make([]byte, LineSize)
		rng.Fill(data)
		saw, err := seq.Write(line, data)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 != 0 {
			batch = append(batch, WriteRequest{Line: line, Data: data})
			continue
		}
		// One in three goes through the single-op path; flush the queued
		// batch first so the sharded engine sees the same write order,
		// then verify SAW agreement immediately.
		if len(batch) > 0 {
			if _, err := sh.WriteBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
		got, err := sh.Write(line, data)
		if err != nil {
			t.Fatal(err)
		}
		if got != saw {
			t.Fatalf("write %d: sharded SAW %d, sequential %d", i, got, saw)
		}
	}
	if _, err := sh.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}

	if got, want := sh.Stats(), seq.Stats(); got != want {
		t.Errorf("stats diverge:\nsharded    %+v\nsequential %+v", got, want)
	}
	if sh.StuckCells() != seq.StuckCells() {
		t.Errorf("stuck cells diverge: sharded %d, sequential %d",
			sh.StuckCells(), seq.StuckCells())
	}
	for l := 0; l < lines; l++ {
		a, err := seq.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sh.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d contents diverge", l)
		}
	}
}

// TestShardedPartition checks the cross-shard address split: writing
// every line exactly once must land ShardLines(i) writes on shard i and
// nothing anywhere else, and reads must round-trip across shard
// boundaries (fault-free config so data survives verbatim).
func TestShardedPartition(t *testing.T) {
	const lines, shards = 1031, 4 // deliberately not a multiple
	m, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: lines, Shards: shards, Seed: 5,
		NewEncoder: func() Encoder { return NewFNWEncoder(16) },
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]WriteRequest, lines)
	want := make([][]byte, lines)
	rng := prng.New(11)
	for l := range reqs {
		data := make([]byte, LineSize)
		rng.Fill(data)
		reqs[l] = WriteRequest{Line: l, Data: data}
		want[l] = data
	}
	if _, err := m.WriteBatch(reqs); err != nil {
		t.Fatal(err)
	}
	var total int64
	for s := 0; s < shards; s++ {
		got := m.ShardStats(s).LineWrites
		wantN := int64((lines - s + shards - 1) / shards)
		if got != wantN {
			t.Errorf("shard %d served %d writes, want %d", s, got, wantN)
		}
		total += got
	}
	if total != lines {
		t.Errorf("shards served %d writes total, want %d", total, lines)
	}
	rd := make([]ReadRequest, lines)
	for l := range rd {
		rd[l] = ReadRequest{Line: l}
	}
	out, err := m.ReadBatch(rd)
	if err != nil {
		t.Fatal(err)
	}
	for l := range out {
		if !bytes.Equal(out[l], want[l]) {
			t.Fatalf("line %d did not round-trip across the partition", l)
		}
	}
}

// TestShardedConcurrentWriters hammers one engine from many goroutines
// mixing single writes, batches and reads; run under -race this is the
// concurrency-safety check. Totals must come out exact.
func TestShardedConcurrentWriters(t *testing.T) {
	const (
		lines      = 512
		shards     = 8
		goroutines = 8
		perG       = 300
	)
	m, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: lines, Shards: shards, Workers: 4, Seed: 3, FaultRate: 1e-3,
		NewEncoder: func() Encoder { return NewVCCGeneratedEncoder(256) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := prng.NewFrom(uint64(g), "writer")
			buf := make([]byte, LineSize)
			var batch []WriteRequest
			for i := 0; i < perG; i++ {
				line := rng.Intn(lines)
				rng.Fill(buf)
				switch i % 3 {
				case 0:
					if _, err := m.Write(line, buf); err != nil {
						t.Error(err)
						return
					}
				case 1:
					data := make([]byte, LineSize)
					copy(data, buf)
					batch = append(batch, WriteRequest{Line: line, Data: data})
					if len(batch) == 25 {
						if _, err := m.WriteBatch(batch); err != nil {
							t.Error(err)
							return
						}
						batch = batch[:0]
					}
				case 2:
					if _, err := m.Read(line, buf); err != nil {
						t.Error(err)
						return
					}
					_ = m.Counters() // poll live counters concurrently
				}
			}
			if _, err := m.WriteBatch(batch); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	var wantWrites int64
	for g := 0; g < goroutines; g++ {
		n := 0
		for i := 0; i < perG; i++ {
			if i%3 != 2 {
				n++
			}
		}
		wantWrites += int64(n)
	}
	if got := m.Stats().LineWrites; got != wantWrites {
		t.Errorf("LineWrites %d after concurrent writers, want %d", got, wantWrites)
	}
	if got := m.Counters().LineWrites; got != wantWrites {
		t.Errorf("live LineWrites %d, want %d", got, wantWrites)
	}
}

// TestShardedMultiShardDeterminism: the same workload on two
// identically-configured multi-shard engines yields identical stats.
func TestShardedMultiShardDeterminism(t *testing.T) {
	build := func(workers int) Stats {
		m, err := NewShardedMemory(ShardedMemoryConfig{
			Lines: 300, Shards: 3, Workers: workers, Seed: 9, FaultRate: 1e-2,
			NewEncoder: func() Encoder { return NewRCCEncoder(64) },
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := prng.New(17)
		reqs := make([]WriteRequest, 900)
		for i := range reqs {
			data := make([]byte, LineSize)
			rng.Fill(data)
			reqs[i] = WriteRequest{Line: rng.Intn(300), Data: data}
		}
		if _, err := m.WriteBatch(reqs); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	if a, b := build(1), build(8); a != b {
		t.Errorf("multi-shard stats depend on worker count:\n1 worker  %+v\n8 workers %+v", a, b)
	}
}
